// Package skiptrie implements the SkipTrie of Oshman and Shavit ("The
// SkipTrie: Low-Depth Concurrent Search without Rebalancing", PODC 2013):
// a lock-free, linearizable concurrent predecessor structure over an
// integer universe [0, 2^W) supporting predecessor queries in expected
// amortized O(log log u + c) steps and updates in O(c log log u), where u
// is the universe size and c the contention, using O(m) space for m keys.
//
// The structure is a probabilistically balanced y-fast trie: all keys live
// in a truncated lock-free skiplist of log log u levels; keys whose towers
// reach the top level (probability 1/log u) are additionally indexed by a
// lock-free x-fast trie — a hash table over key prefixes searched by
// binary search on prefix length. Expected gaps of log u between indexed
// keys replace the y-fast trie's explicit bucket rebalancing, which is
// what makes a lock-free implementation tractable.
//
// # Quick start
//
//	st := skiptrie.New(skiptrie.WithWidth(32))
//	st.Insert(42)
//	st.Insert(100)
//	if k, ok := st.Predecessor(99); ok {
//		fmt.Println(k) // 42
//	}
//
// All operations are safe for concurrent use and lock-free: a stalled
// goroutine cannot block others. For a key-value variant see Map.
package skiptrie

import (
	"time"

	"skiptrie/internal/core"
	"skiptrie/internal/skiplist"
	"skiptrie/internal/stats"
)

// SkipTrie is a concurrent lock-free sorted set of uint64 keys drawn from
// a universe [0, 2^W). Create one with New; the zero value is not usable.
type SkipTrie struct {
	c *core.SkipTrie[struct{}]
	m *Metrics
}

type options struct {
	width        uint8
	shards       int
	maxShards    int
	autoReshard  bool
	reshardEvery time.Duration
	disableDCSS  bool
	repair       skiplist.RepairMode
	seed         uint64
	metrics      *Metrics
}

// Option configures a SkipTrie or Map.
type Option func(*options)

// WithWidth sets the universe width W = log2(u): keys must be < 2^w.
// Valid widths are 1..64; the default is 64. Smaller universes use fewer
// skiplist levels (log log u) and shallower trie searches.
func WithWidth(w int) Option {
	return func(o *options) {
		if w < 1 {
			w = 1
		}
		if w > 64 {
			w = 64
		}
		o.width = uint8(w)
	}
}

// WithoutDCSS replaces every DCSS with a plain CAS (dropping the second
// guard). The paper proves the structure remains linearizable and
// lock-free in this mode; only the amortized step bound degrades. Exposed
// for the T7 ablation experiment.
func WithoutDCSS() Option {
	return func(o *options) { o.disableDCSS = true }
}

// WithEagerPrevRepair selects the paper's option (1) for maintaining
// top-level prev pointers: inserts help their successors complete before
// finishing, trading extra write contention for point-contention bounds.
// The default is the paper's choice, option (2): transient backward gaps
// are tolerated and repaired by the in-flight insert. Exposed for the T8
// ablation experiment.
func WithEagerPrevRepair() Option {
	return func(o *options) { o.repair = skiplist.RepairEager }
}

// WithSeed seeds tower-height randomness. The default seed is fixed;
// use distinct seeds for statistically independent runs.
//
// Height draws are served from striped per-goroutine generator states
// (one padded lane per goroutine-hash bucket), so the seed fixes the
// drawn sequence — and therefore the structure's shape — only when all
// inserts come from a single goroutine. Concurrent writers interleave
// stripe seeding and stepping nondeterministically: shapes stay
// statistically identical but are not reproducible run to run.
func WithSeed(seed uint64) Option {
	return func(o *options) { o.seed = seed }
}

// WithMetrics attaches a Metrics collector that aggregates per-operation
// step counts (pointer hops, CAS/DCSS attempts, hash probes). The overhead
// is one short striped-counter update per operation.
func WithMetrics(m *Metrics) Option {
	return func(o *options) { o.metrics = m }
}

func buildOptions(opts []Option) options {
	o := options{width: 64}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// New returns an empty SkipTrie.
func New(opts ...Option) *SkipTrie {
	o := buildOptions(opts)
	return &SkipTrie{
		c: core.NewSet(core.Config{
			Width:       o.width,
			DisableDCSS: o.disableDCSS,
			Repair:      o.repair,
			Seed:        o.seed,
		}),
		m: o.metrics,
	}
}

// op returns a fresh step counter when metrics are attached, else nil.
func (s *SkipTrie) op() *stats.Op {
	if s.m == nil {
		return nil
	}
	return new(stats.Op)
}

// Insert adds key to the set and reports whether it was absent. Keys
// outside the universe are rejected (returns false).
func (s *SkipTrie) Insert(key uint64) bool {
	c := s.op()
	ok := s.c.Add(key, c)
	s.m.record(OpInsert, c)
	return ok
}

// Delete removes key from the set and reports whether this call removed
// it.
func (s *SkipTrie) Delete(key uint64) bool {
	c := s.op()
	ok := s.c.Delete(key, c)
	s.m.record(OpDelete, c)
	return ok
}

// Contains reports whether key is in the set.
func (s *SkipTrie) Contains(key uint64) bool {
	c := s.op()
	ok := s.c.Contains(key, c)
	s.m.record(OpContains, c)
	return ok
}

// Predecessor returns the largest key <= x.
func (s *SkipTrie) Predecessor(x uint64) (uint64, bool) {
	c := s.op()
	k, _, ok := s.c.Predecessor(x, c)
	s.m.record(OpPredecessor, c)
	return k, ok
}

// StrictPredecessor returns the largest key < x.
func (s *SkipTrie) StrictPredecessor(x uint64) (uint64, bool) {
	c := s.op()
	k, _, ok := s.c.StrictPredecessor(x, c)
	s.m.record(OpPredecessor, c)
	return k, ok
}

// Successor returns the smallest key >= x.
func (s *SkipTrie) Successor(x uint64) (uint64, bool) {
	c := s.op()
	k, _, ok := s.c.Successor(x, c)
	s.m.record(OpSuccessor, c)
	return k, ok
}

// StrictSuccessor returns the smallest key > x.
func (s *SkipTrie) StrictSuccessor(x uint64) (uint64, bool) {
	c := s.op()
	k, _, ok := s.c.StrictSuccessor(x, c)
	s.m.record(OpSuccessor, c)
	return k, ok
}

// Min returns the smallest key in the set.
func (s *SkipTrie) Min() (uint64, bool) {
	k, _, ok := s.c.Min(nil)
	return k, ok
}

// Max returns the largest key in the set.
func (s *SkipTrie) Max() (uint64, bool) {
	k, _, ok := s.c.Max(nil)
	return k, ok
}

// Len returns the number of keys. Under concurrent mutation the value is
// a point-in-time approximation.
func (s *SkipTrie) Len() int { return s.c.Len() }

// Width returns the universe width W = log2(u).
func (s *SkipTrie) Width() int { return int(s.c.Width()) }

// Levels returns the number of skiplist levels (about log log u).
func (s *SkipTrie) Levels() int { return s.c.Levels() }

// MaxKey returns the largest representable key, 2^W - 1.
func (s *SkipTrie) MaxKey() uint64 { return s.c.MaxKey() }

// Range calls fn on every key >= from in ascending order until fn returns
// false. Iteration is weakly consistent under concurrent mutation.
func (s *SkipTrie) Range(from uint64, fn func(key uint64) bool) {
	s.c.Range(from, func(k uint64, _ struct{}) bool { return fn(k) }, nil)
}

// Descend calls fn on every key <= from in descending order until fn
// returns false. Each step costs one strict-predecessor query; iteration
// is weakly consistent under concurrent mutation.
func (s *SkipTrie) Descend(from uint64, fn func(key uint64) bool) {
	s.c.Descend(from, func(k uint64, _ struct{}) bool { return fn(k) }, nil)
}

// Keys returns all keys in ascending order (a weakly consistent snapshot).
func (s *SkipTrie) Keys() []uint64 {
	keys := make([]uint64, 0, s.Len())
	s.Range(0, func(k uint64) bool {
		keys = append(keys, k)
		return true
	})
	return keys
}

// SpaceStats describes the structure's footprint in node counts.
type SpaceStats = core.SpaceStats

// Space returns current space statistics (approximate under concurrency).
func (s *SkipTrie) Space() SpaceStats { return s.c.Space() }

// TopGaps returns the distribution of key counts between consecutive
// trie-indexed (top-level) keys; the paper predicts a geometric
// distribution with mean about log u. Call at quiescence.
func (s *SkipTrie) TopGaps() []int { return s.c.TopGaps() }

// Validate checks every structural invariant of the quiescent structure.
// It must not run concurrently with other operations. A non-nil error
// indicates a bug in this package.
func (s *SkipTrie) Validate() error { return s.c.Validate() }
