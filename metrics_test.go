package skiptrie

import (
	"testing"
	"time"
)

// TestMetricsAttribution checks that every public operation records its
// sample under the right OpKind bucket — in particular that successor
// queries land under OpSuccessor, not OpPredecessor.
func TestMetricsAttribution(t *testing.T) {
	var mx Metrics
	s := MustNew(WithWidth(16), WithMetrics(&mx))
	for k := uint64(10); k <= 50; k += 10 {
		s.Insert(k) // 5 x OpInsert
	}
	s.Delete(10)            // 1 x OpDelete
	s.Contains(20)          // 1 x OpContains
	s.Contains(11)          // 1 x OpContains
	s.Predecessor(25)       // OpPredecessor
	s.StrictPredecessor(30) // OpPredecessor
	s.Successor(25)         // OpSuccessor
	s.Successor(26)         // OpSuccessor
	s.StrictSuccessor(30)   // OpSuccessor
	sn := mx.Snapshot()
	want := map[OpKind]uint64{
		OpInsert:      5,
		OpDelete:      1,
		OpContains:    2,
		OpPredecessor: 2,
		OpSuccessor:   3,
	}
	for kind, n := range want {
		if got := sn.Ops[kind]; got != n {
			t.Errorf("set %v ops = %d, want %d", kind, got, n)
		}
	}
	if got := sn.TotalOps(); got != 13 {
		t.Errorf("set TotalOps = %d, want 13", got)
	}
	if sn.AvgSteps(OpSuccessor) <= 0 {
		t.Error("successor queries recorded no steps")
	}

	// The Map wrapper shares the same attribution.
	var mm Metrics
	m := MustNewMap[int](WithWidth(16), WithMetrics(&mm))
	m.Store(5, 1)          // OpInsert
	m.Store(5, 2)          // OpInsert (update path)
	m.LoadOrStore(6, 3)    // OpInsert
	m.Load(5)              // OpContains
	m.Delete(6)            // OpDelete
	m.Predecessor(9)       // OpPredecessor
	m.StrictPredecessor(9) // OpPredecessor
	m.Successor(1)         // OpSuccessor
	m.StrictSuccessor(1)   // OpSuccessor
	msn := mm.Snapshot()
	mwant := map[OpKind]uint64{
		OpInsert:      3,
		OpDelete:      1,
		OpContains:    1,
		OpPredecessor: 2,
		OpSuccessor:   2,
	}
	for kind, n := range mwant {
		if got := msn.Ops[kind]; got != n {
			t.Errorf("map %v ops = %d, want %d", kind, got, n)
		}
	}
}

// TestMetricsReshardCounters pins the reshard section of MetricsSnapshot: nil
// metrics are safe, counters accumulate across manual splits/merges,
// and the skew gauge reflects the balancer's last sample.
func TestMetricsReshardCounters(t *testing.T) {
	// Nil receiver paths must not panic (Sharded without WithMetrics).
	var nilM *Metrics
	nilM.recordReshard(true, 5, time.Millisecond, 0, 0)
	nilM.setSkew(2.0)
	if sn := nilM.Snapshot(); sn.Reshard.Splits != 0 {
		t.Fatalf("nil metrics snapshot = %+v", sn.Reshard)
	}

	var m Metrics
	m.recordReshard(true, 10, 2*time.Millisecond, time.Millisecond, time.Millisecond)
	m.recordReshard(true, 20, 3*time.Millisecond, 2*time.Millisecond, time.Millisecond)
	m.recordReshard(false, 30, 5*time.Millisecond, 3*time.Millisecond, 2*time.Millisecond)
	m.setSkew(1.75)
	sn := m.Snapshot()
	r := sn.Reshard
	if r.Splits != 2 || r.Merges != 1 || r.MovedKeys != 60 {
		t.Fatalf("Reshard counters = %+v", r)
	}
	if r.MigrateTime != 10*time.Millisecond {
		t.Fatalf("MigrateTime = %v, want 10ms", r.MigrateTime)
	}
	if r.Skew != 1.75 {
		t.Fatalf("Skew = %v, want 1.75", r.Skew)
	}
}
