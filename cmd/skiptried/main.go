// Command skiptried serves Sharded[[]byte] namespaces over the wire
// protocol (see internal/wire). It listens on -addr, optionally writes
// the resolved address to -addr-file (so harnesses can bind port 0 and
// discover the port without parsing logs), and drains gracefully on
// SIGTERM/SIGINT: accepted requests finish, late frames get SHUTDOWN,
// and the process logs "drained, exiting" before returning 0.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"skiptrie/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7171", "listen address (use :0 for a random port)")
		addrFile   = flag.String("addr-file", "", "write the resolved listen address to this file")
		shards     = flag.Int("shards", 0, "initial shards per namespace (0 = GOMAXPROCS)")
		maxShards  = flag.Int("max-shards", 0, "max shards per namespace (0 = package maximum)")
		reshard    = flag.Duration("reshard-every", 0, "auto-reshard balancer interval (0 = default)")
		queueDepth = flag.Int("queue-depth", 0, "per-connection request queue depth (0 = default)")
		batchMin   = flag.Int("batch-min", 0, "min consecutive SET run coalesced into StoreBatch (0 = default, <0 disables)")
		latRate    = flag.Float64("latency-rate", 0, "per-namespace latency sampling rate (0 = default, <0 disables)")
		linger     = flag.Duration("drain-linger", 0, "how long draining connections answer late frames (0 = default)")
	)
	flag.Parse()

	srv := server.New(server.Config{
		Shards:       *shards,
		MaxShards:    *maxShards,
		ReshardEvery: *reshard,
		QueueDepth:   *queueDepth,
		BatchMin:     *batchMin,
		LatencyRate:  *latRate,
		DrainLinger:  *linger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("skiptried: listen: %v", err)
	}
	resolved := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(resolved+"\n"), 0o644); err != nil {
			log.Fatalf("skiptried: write addr-file: %v", err)
		}
	}
	log.Printf("skiptried: listening on %s", resolved)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	drained := make(chan struct{})
	go func() {
		sig := <-sigc
		log.Printf("skiptried: %v: draining", sig)
		srv.Close()
		close(drained)
	}()

	start := time.Now()
	if err := srv.Serve(ln); err != server.ErrDraining {
		log.Fatalf("skiptried: serve: %v", err)
	}
	<-drained // Serve returns as soon as the listener closes; wait for the linger
	st := srv.Stats()
	fmt.Fprintf(os.Stderr,
		"skiptried: drained, exiting (up %s, conns=%d frames=%d busy=%d shutdown=%d protoerr=%d batches=%d namespaces=%d)\n",
		time.Since(start).Round(time.Millisecond), st.ConnsAccepted, st.Frames,
		st.BusyRejects, st.ShutdownRejects, st.ProtoErrors, st.SetBatches, st.Namespaces)
}
