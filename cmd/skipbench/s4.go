package main

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"skiptrie/internal/harness"
	"skiptrie/internal/server"
	"skiptrie/internal/stats"
	"skiptrie/internal/wire"
	"skiptrie/internal/workload"
)

// s4ConnectionScale measures the network front-end at connection
// scale: an in-process skiptried over a loopback listener, swept from
// tens to >=1024 concurrent pipelining clients. The question the row
// sweep answers is whether throughput and client tail latency survive
// connection count — the per-connection cost is three goroutines and
// two bounded queues, so the sweep should degrade smoothly (scheduler
// pressure) rather than collapse, with zero protocol errors and BUSY
// backpressure instead of unbounded buffering. The server runs with
// auto-resharding on, so the final shard column also shows the
// balancer reacting to the MovingZipf hot range under real load.
func s4ConnectionScale(sc harness.Scale) harness.Result {
	res := harness.Result{
		Name:  "S4 connection scale: wire protocol over loopback, pipelined MovingZipf mix",
		Claim: "throughput and client tails degrade smoothly with connection count; zero protocol errors at >=1024 conns",
		Header: []string{"conns", "kop/s", "p50 us", "p99 us", "p999 us",
			"busy", "proto err", "batched sets", "shards"},
	}
	const (
		width    = 24
		pipeline = 8
		nsName   = "s4"
	)
	// Per-cell duration: the shared -dur default (150ms) is too short to
	// amortize dialing a thousand connections; give each cell at least a
	// half second of steady state.
	dur := sc.Duration
	if dur < 500*time.Millisecond {
		dur = 500 * time.Millisecond
	}
	mix := workload.Mix{InsertPct: 40, DeletePct: 10, ContainsPct: 45}
	sizer := workload.ValSizer{Min: 16, Max: 64}

	for _, conns := range []int{16, 128, 1024} {
		srv := server.New(server.Config{
			Shards:       1,
			ReshardEvery: 10 * time.Millisecond,
			QueueDepth:   2 * pipeline,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("conns=%d: listen: %v", conns, err))
			continue
		}
		go srv.Serve(ln)
		addr := ln.Addr().String()

		// Dial everything up front so the measured window is steady state.
		clients := make([]*wire.Client, conns)
		dialErr := 0
		for i := range clients {
			if clients[i], err = wire.Dial(addr, 10*time.Second); err != nil {
				dialErr++
			}
		}

		gen := workload.NewMovingZipf(width, 1<<(width-4), 1<<18, 1.1)
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			lat      stats.Hist
			ops      uint64
			busy     uint64
			protoErr = uint64(dialErr)
		)
		stop := make(chan struct{})
		start := time.Now()
		for i, c := range clients {
			if c == nil {
				continue
			}
			wg.Add(1)
			go func(id int, c *wire.Client) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(2000 + int64(id)))
				val := make([]byte, sizer.Max)
				var local stats.Hist
				var lOps, lBusy, lErr uint64
				var resp wire.Response
			windows:
				for w := 0; ; w++ {
					select {
					case <-stop:
						break windows
					default:
					}
					for j := 0; j < pipeline; j++ {
						key := gen.Next(rng)
						var req wire.Request
						if w%64 == 63 && j == 0 {
							req = wire.Request{Op: wire.OpSnapScan, NS: []byte(nsName), Key: key, Limit: 32}
						} else {
							switch mix.Pick(rng) {
							case workload.OpInsert:
								v := val[:sizer.Next(rng)]
								sizer.Fill(v, key)
								req = wire.Request{Op: wire.OpSet, NS: []byte(nsName), Key: key, Val: v}
							case workload.OpDelete:
								req = wire.Request{Op: wire.OpDel, NS: []byte(nsName), Key: key}
							case workload.OpContains:
								req = wire.Request{Op: wire.OpGet, NS: []byte(nsName), Key: key}
							default:
								req = wire.Request{Op: wire.OpScan, NS: []byte(nsName), Key: key, Limit: 16}
							}
						}
						req.Seq = c.NextSeq()
						if err := c.Send(&req); err != nil {
							lErr++
							break windows
						}
					}
					if err := c.Flush(); err != nil {
						lErr++
						break windows
					}
					t0 := time.Now()
					for j := 0; j < pipeline; j++ {
						if err := c.Recv(&resp); err != nil {
							lErr++
							break windows
						}
						local.Record(int64(time.Since(t0)))
						switch resp.Status {
						case wire.StatusOK, wire.StatusNotFound:
							lOps++
						case wire.StatusBusy:
							lBusy++
						default:
							lErr++
						}
					}
				}
				c.Close()
				mu.Lock()
				lat.Merge(local)
				ops += lOps
				busy += lBusy
				protoErr += lErr
				mu.Unlock()
			}(i, c)
		}
		time.Sleep(dur)
		close(stop)
		wg.Wait()
		elapsed := time.Since(start)
		st := srv.Stats()
		shards := srv.NamespaceShards(nsName)
		srv.Close()

		res.AddRow(
			harness.I(conns),
			harness.F(float64(ops)/float64(elapsed.Milliseconds()+1)),
			harness.Us(lat.Quantile(0.50)), harness.Us(lat.Quantile(0.99)), harness.Us(lat.Quantile(0.999)),
			harness.I(int(busy)), harness.I(int(protoErr)),
			harness.I(int(st.BatchedSets)), harness.I(shards),
		)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("workload: %s + scans, pipeline window %d, one SNAPSHOT-SCAN per 64 windows per conn", mix, pipeline),
		"latency is client-observed per request (window flush to response); server runs in-process with auto-resharding from 1 shard",
		"BUSY responses are backpressure (bounded queues), not failures; proto err must stay 0",
	)
	return res
}
