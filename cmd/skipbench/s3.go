package main

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync"
	"time"

	"skiptrie"
	"skiptrie/internal/harness"
)

// s3PinPressure measures what live snapshot pins cost the write path:
// every open snapshot forces deletes to retain their nodes and
// overwrites to retain superseded values, so Store tail latency and
// retained memory should grow with the pin count (and the churn during
// the pins' lives), never with structure size. Unlike the other
// experiments this one drives the public API — Sharded with
// WithMetrics + WithLatencySampling — because the latency histograms
// and retention gauges under test live on that surface.
func s3PinPressure(sc harness.Scale) harness.Result {
	res := harness.Result{
		Name:  "S3 pin pressure: store latency vs live snapshot pins (W=32)",
		Claim: "open snapshots retain churned nodes: store tails and retained memory grow with pins and churn, not structure size",
		Header: []string{"pins", "threads", "kop/s", "store p50 us", "store p99 us", "store p999 us",
			"retained nodes", "oldest pin"},
	}
	const w = 32
	threads := 1
	if len(sc.Threads) > 0 {
		threads = sc.Threads[len(sc.Threads)-1]
	}
	var lastWindow skiptrie.MetricsSnapshot
	for _, pins := range []int{0, 1, 4, 16} {
		var met skiptrie.Metrics
		m := skiptrie.MustNewSharded[uint64](
			skiptrie.WithWidth(w),
			skiptrie.WithMetrics(&met),
			skiptrie.WithLatencySampling(1.0/64),
		)
		// Spread resident population, bit-reversed so it tiles the
		// universe (and the shards) evenly.
		for i := 0; i < sc.M; i++ {
			k := bits.Reverse64(uint64(i)) >> (64 - w)
			m.Store(k, uint64(i))
		}
		snaps := make([]*skiptrie.Snapshot[uint64], pins)
		for i := range snaps {
			snaps[i] = m.Snapshot()
		}

		// Churn under the pins: overwrite half the draws, delete+reinsert
		// the rest, so every pinned epoch accumulates retained versions.
		before := met.Snapshot()
		var wg sync.WaitGroup
		stop := make(chan struct{})
		ops := make([]int, threads)
		start := time.Now()
		for g := 0; g < threads; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(701 + int64(g)*7919))
				for {
					select {
					case <-stop:
						return
					default:
					}
					for i := 0; i < 64; i++ {
						k := bits.Reverse64(uint64(rng.Intn(sc.M))) >> (64 - w)
						if i&1 == 0 {
							m.Store(k, rng.Uint64())
						} else {
							m.Delete(k)
							m.Store(k, rng.Uint64())
						}
						ops[g]++
					}
				}
			}(g)
		}
		time.Sleep(sc.Duration)
		close(stop)
		wg.Wait()
		elapsed := time.Since(start)

		// The measurement window is the churn phase alone: Sub strips the
		// prefill's ops and samples, keeps the gauges' newer readings.
		window := met.Snapshot().Sub(before)
		lastWindow = window
		lat := window.Latency[skiptrie.OpInsert]
		total := 0
		for _, n := range ops {
			total += n
		}
		res.AddRow(
			harness.I(pins), harness.I(threads),
			harness.F(float64(total)/float64(elapsed.Milliseconds()+1)),
			harness.Us(int64(lat.P50)), harness.Us(int64(lat.P99)), harness.Us(int64(lat.P999)),
			harness.I(window.RetainedNodes),
			window.OldestPinAge.Round(time.Millisecond).String(),
		)
		for _, sn := range snaps {
			sn.Close()
		}
	}
	res.Notes = append(res.Notes,
		"workload: 50/25/25 overwrite/delete/reinsert churn over the resident population while N snapshots stay open",
		"store latency sampled at 1/64 via WithLatencySampling; window isolated with MetricsSnapshot.Sub",
		fmt.Sprintf("last window collector report:\n%s", lastWindow.String()),
	)
	return res
}
