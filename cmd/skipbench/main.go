// Command skipbench regenerates the reproduction experiments of DESIGN.md
// (T1-T8, F1): the measurable claims of "The SkipTrie: Low-Depth
// Concurrent Search without Rebalancing" (Oshman & Shavit, PODC 2013).
//
// Usage:
//
//	skipbench [-exp all|t1|t2|t3|t4|t5|t6|f1|t7|t8|s1|s2|s3|s4] [-m 16384]
//	          [-queries 20000] [-dur 150ms] [-threads 1,2,4,8]
//	          [-shards 1,2,4,8,16]
//
// Each experiment prints one table; EXPERIMENTS.md archives a reference
// run and compares it against the paper's claims.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"skiptrie/internal/harness"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp     = flag.String("exp", "all", "experiment id: all, t1..t8, f1, s1, s2, s3, s4 (comma-separated ok)")
		m       = flag.Int("m", 1<<14, "resident keys")
		queries = flag.Int("queries", 20000, "sequential measured queries")
		dur     = flag.Duration("dur", 150*time.Millisecond, "duration per concurrent cell")
		threads = flag.String("threads", "1,2,4,8", "thread counts for scaling experiments")
		shards  = flag.String("shards", "1,2,4,8,16", "shard counts for the s1 sharding sweep")
	)
	flag.Parse()

	ths, err := parseCounts(*threads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipbench: %v\n", err)
		return 2
	}
	shs, err := parseCounts(*shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipbench: %v\n", err)
		return 2
	}
	sc := harness.Scale{M: *m, Queries: *queries, Duration: *dur, Threads: ths, Shards: shs}

	fmt.Printf("skiptrie reproduction experiments (GOMAXPROCS=%d, m=%d, queries=%d, dur=%v)\n\n",
		runtime.GOMAXPROCS(0), sc.M, sc.Queries, sc.Duration)

	table := map[string]func(harness.Scale) harness.Result{
		"t1": harness.T1PredecessorVsUniverse,
		"t2": harness.T2PredecessorVsM,
		"t3": harness.T3AmortizedUpdates,
		"t4": harness.T4Throughput,
		"t5": harness.T5Contention,
		"t6": harness.T6Space,
		"f1": harness.F1TopGaps,
		"t7": harness.T7DCSSvsCAS,
		"t8": harness.T8PrevRepair,
		"s1": harness.S1ShardedScaling,
		"s2": harness.S2HotRangeResharding,
		"s3": s3PinPressure,
		"s4": s4ConnectionScale,
	}
	order := []string{"t1", "t2", "t3", "t4", "t5", "t6", "f1", "t7", "t8", "s1", "s2", "s3", "s4"}

	var ids []string
	if *exp == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.ToLower(strings.TrimSpace(id))
			if _, ok := table[id]; !ok {
				fmt.Fprintf(os.Stderr, "skipbench: unknown experiment %q (want one of %s)\n",
					id, strings.Join(order, ", "))
				return 2
			}
			ids = append(ids, id)
		}
	}

	for _, id := range ids {
		start := time.Now()
		res := table[id](sc)
		res.Notes = append(res.Notes, fmt.Sprintf("experiment wall time: %v", time.Since(start).Round(time.Millisecond)))
		res.Fprint(os.Stdout)
	}
	return 0
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no counts")
	}
	return out, nil
}
