// Command skipviz builds a SkipTrie from a synthetic workload and prints
// its internal shape: per-level populations of the truncated skiplist, the
// top-level gap histogram (the paper's Figure 1, as ASCII), and x-fast
// trie density per prefix length. It makes the probabilistic balancing
// argument visible: level populations halve per level, and trie-indexed
// keys sit ~log u apart without any rebalancing.
//
// Usage:
//
//	skipviz [-width 32] [-m 16384] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"skiptrie/internal/core"
	"skiptrie/internal/harness"
	"skiptrie/internal/uintbits"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		width = flag.Int("width", 32, "universe width W = log u (1..64)")
		m     = flag.Int("m", 1<<14, "number of keys")
		seed  = flag.Uint64("seed", 1, "tower-height seed")
	)
	flag.Parse()
	if *width < 1 || *width > 64 {
		fmt.Fprintln(os.Stderr, "skipviz: width must be in 1..64")
		return 2
	}

	st := core.NewSet(core.Config{Width: uint8(*width), Seed: *seed})
	keys := harness.Prefill(harness.SkipTrieSet{T: st}, *m, uint8(*width))

	fmt.Printf("SkipTrie: W=%d (u=2^%d), levels=%d, keys=%d\n\n",
		*width, *width, st.Levels(), len(keys))

	// Level populations: measured vs the geometric expectation.
	fmt.Println("truncated skiplist level populations:")
	sp := st.Space()
	levels := st.Levels()
	gaps := st.TopGaps()
	topCount := len(gaps) - 1
	if topCount < 0 {
		topCount = 0
	}
	counts := st.LevelCounts()
	for lv := 0; lv < levels; lv++ {
		expected := float64(len(keys)) / float64(uint64(1)<<lv)
		bar := strings.Repeat("#", int(40*float64(counts[lv])/float64(len(keys))))
		fmt.Printf("  L%-2d measured=%8d  expected=%9.1f  %s\n", lv, counts[lv], expected, bar)
	}
	fmt.Printf("  total tower nodes: %d (%.2f per key)\n\n",
		sp.TowerNodes, float64(sp.TowerNodes)/float64(len(keys)))

	// Figure 1: gap histogram.
	fmt.Printf("top-level gap histogram (trie-indexed keys: %d, mean spacing target ~%d):\n", topCount, *width)
	hist := map[int]int{}
	maxBucket := 0
	sum := 0
	for _, g := range gaps {
		b := g / 8
		hist[b]++
		if b > maxBucket {
			maxBucket = b
		}
		sum += g
	}
	peak := 0
	for _, c := range hist {
		if c > peak {
			peak = c
		}
	}
	for b := 0; b <= maxBucket; b++ {
		c := hist[b]
		bar := ""
		if peak > 0 {
			bar = strings.Repeat("*", 50*c/peak)
		}
		fmt.Printf("  [%3d-%3d) %5d %s\n", b*8, (b+1)*8, c, bar)
	}
	if len(gaps) > 0 {
		fmt.Printf("  mean gap: %.1f (geometric prediction: %d)\n\n", float64(sum)/float64(len(gaps)), *width)
	}

	// Trie density per prefix length: at depth d there are at most
	// min(2^d, tops) distinct prefixes.
	fmt.Printf("x-fast trie: %d prefix nodes over %d hash buckets (%.2f prefixes per key)\n",
		sp.TriePrefix, sp.HashBuckets, float64(sp.TriePrefix)/float64(len(keys)))
	fmt.Printf("  expectation: tops * W / overlap ~= %d nodes for %d tops\n",
		estimateTrieNodes(topCount, *width), topCount)
	fmt.Printf("  binary search depth per query: %d probes\n", uintbits.Levels(uint8(*width))-1+2)
	return 0
}

// estimateTrieNodes approximates the trie size: the top d = lg(tops)
// levels are nearly full (2^d nodes) and below that each top key
// contributes roughly its own chain of (W - lg tops) nodes.
func estimateTrieNodes(tops, w int) int {
	if tops == 0 {
		return 0
	}
	lg := 0
	for 1<<lg < tops {
		lg++
	}
	full := 1<<lg - 1
	chains := tops * (w - lg)
	if chains < 0 {
		chains = 0
	}
	return full + chains
}
