// Command skipstress hammers a SkipTrie with concurrent randomized
// operations and then validates every structural invariant, in repeated
// rounds. It is the long-running correctness companion to the unit tests:
// run it for minutes or hours to shake out rare interleavings.
//
// Usage:
//
//	skipstress [-rounds 20] [-workers 8] [-ops 5000] [-width 32]
//	           [-hot 0] [-nodcss] [-eager] [-seed 1]
//
// Each round: workers execute random operations (over a hot window if -hot
// is set); then the structure is validated and per-key accounting is
// checked against the net insert/delete balance. Any violation aborts with
// a non-zero exit.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"skiptrie/internal/core"
	"skiptrie/internal/skiplist"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		rounds  = flag.Int("rounds", 20, "validation rounds")
		workers = flag.Int("workers", 8, "concurrent goroutines")
		ops     = flag.Int("ops", 5000, "operations per worker per round")
		width   = flag.Int("width", 32, "universe width")
		hot     = flag.Int("hot", 0, "hot-window size (0 = whole universe scaled to 1<<20)")
		noDCSS  = flag.Bool("nodcss", false, "run in CAS-fallback mode")
		eager   = flag.Bool("eager", false, "use eager prev repair (option 1)")
		seed    = flag.Int64("seed", 1, "base RNG seed")
	)
	flag.Parse()

	repair := skiplist.RepairRelaxed
	if *eager {
		repair = skiplist.RepairEager
	}
	st := core.NewSet(core.Config{
		Width:       uint8(*width),
		DisableDCSS: *noDCSS,
		Repair:      repair,
		Seed:        uint64(*seed),
	})

	span := uint64(1) << 20
	if *width < 20 {
		span = 1 << *width
	}
	if *hot > 0 {
		span = uint64(*hot)
	}

	fmt.Printf("skipstress: width=%d workers=%d ops/round=%d span=%d dcss=%v eager=%v\n",
		*width, *workers, *ops, span, !*noDCSS, *eager)

	// deltas[w][k] tracks worker w's net successful inserts of key k so the
	// final state can be checked exactly.
	start := time.Now()
	for round := 1; round <= *rounds; round++ {
		var wg sync.WaitGroup
		deltas := make([]map[uint64]int, *workers)
		for g := 0; g < *workers; g++ {
			deltas[g] = make(map[uint64]int)
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(*seed + int64(round*1000+g)))
				d := deltas[g]
				for i := 0; i < *ops; i++ {
					k := uint64(rng.Int63n(int64(span)))
					switch rng.Intn(5) {
					case 0, 1:
						if st.Add(k, nil) {
							d[k]++
						}
					case 2, 3:
						if st.Delete(k, nil) {
							d[k]--
						}
					default:
						st.Predecessor(k, nil)
					}
				}
			}(g)
		}
		wg.Wait()

		if err := st.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "round %d: INVARIANT VIOLATION: %v\n", round, err)
			return 1
		}
		// Net-balance audit: each key's presence must equal the sign of its
		// total net insertions across rounds... net per round is checked
		// cumulatively via a running ledger.
		if !audit(st, deltas, round) {
			return 1
		}
		fmt.Printf("round %2d ok: len=%d validate=pass (%v)\n", round, st.Len(), time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("skipstress: all rounds passed")
	return 0
}

// ledger accumulates net inserts across rounds (keys only ever touched
// through st, so presence must equal net > 0).
var ledger = map[uint64]int{}

func audit(st *core.SkipTrie[struct{}], deltas []map[uint64]int, round int) bool {
	for _, d := range deltas {
		for k, n := range d {
			ledger[k] += n
		}
	}
	for k, n := range ledger {
		if n != 0 && n != 1 {
			fmt.Fprintf(os.Stderr, "round %d: key %d has impossible net balance %d\n", round, k, n)
			return false
		}
		if got, want := st.Contains(k, nil), n == 1; got != want {
			fmt.Fprintf(os.Stderr, "round %d: key %d presence=%v, ledger says %v\n", round, k, got, want)
			return false
		}
	}
	return true
}
