// Command skipload drives a skiptried server at connection scale: N
// concurrent connections, each pipelining a MovingZipf mixed workload,
// with client-side latency histograms. It exits nonzero if any
// protocol error (ERR status, seq mismatch, decode failure) occurs —
// the e2e CI lane's pass/fail signal. BUSY and SHUTDOWN rejections are
// counted but are not errors: they are the protocol's backpressure.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"skiptrie/internal/stats"
	"skiptrie/internal/wire"
	"skiptrie/internal/workload"
)

type counters struct {
	ops      atomic.Uint64 // responses with OK/NotFound status
	busy     atomic.Uint64
	shutdown atomic.Uint64
	errs     atomic.Uint64 // protocol errors
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7171", "server address")
		nsName   = flag.String("ns", "load", "namespace")
		conns    = flag.Int("conns", 64, "concurrent connections")
		dur      = flag.Duration("dur", 5*time.Second, "run duration")
		pipeline = flag.Int("pipeline", 16, "pipeline window per connection")
		setPct   = flag.Int("set", 40, "SET percent of the mix")
		delPct   = flag.Int("del", 10, "DEL percent of the mix")
		getPct   = flag.Int("get", 45, "GET percent of the mix (remainder is SCAN)")
		snapEv   = flag.Int("snapscan-every", 64, "issue one SNAPSHOT-SCAN every N windows per connection (0 disables)")
		width    = flag.Uint("width", 24, "key universe width in bits")
		valMin   = flag.Int("val-min", 16, "min value size")
		valMax   = flag.Int("val-max", 128, "max value size")
		seed     = flag.Int64("seed", 1, "workload seed")
		statsOut = flag.String("stats-out", "", "write the server's final STATS exposition to this file")
	)
	flag.Parse()

	mix := workload.Mix{InsertPct: *setPct, DeletePct: *delPct, ContainsPct: *getPct}
	gen := workload.NewMovingZipf(uint8(*width), 1<<(*width-4), 1<<20, 1.1)
	sizer := workload.ValSizer{Min: *valMin, Max: *valMax}
	ns := []byte(*nsName)

	var ctr counters
	var mu sync.Mutex
	var lat stats.Hist
	stop := make(chan struct{})
	var wg sync.WaitGroup

	log.Printf("skipload: %d conns, pipeline %d, %s + scan, %s against %s",
		*conns, *pipeline, mix, *dur, *addr)
	start := time.Now()
	for i := 0; i < *conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(id)))
			c, err := wire.Dial(*addr, 10*time.Second)
			if err != nil {
				log.Printf("skipload: conn %d: dial: %v", id, err)
				ctr.errs.Add(1)
				return
			}
			defer c.Close()
			local := runConn(c, rng, ns, gen, mix, sizer, *pipeline, *snapEv, &ctr, stop)
			mu.Lock()
			lat.Merge(*local)
			mu.Unlock()
		}(i)
	}
	time.AfterFunc(*dur, func() { close(stop) })
	wg.Wait()
	elapsed := time.Since(start)

	ops := ctr.ops.Load()
	fmt.Printf("skipload: %d ops in %s (%.1f kop/s) busy=%d shutdown=%d errors=%d\n",
		ops, elapsed.Round(time.Millisecond), float64(ops)/elapsed.Seconds()/1e3,
		ctr.busy.Load(), ctr.shutdown.Load(), ctr.errs.Load())
	if lat.Count > 0 {
		fmt.Printf("skipload: client latency p50=%s p99=%s p999=%s mean=%s (%d samples)\n",
			time.Duration(lat.Quantile(0.50)), time.Duration(lat.Quantile(0.99)),
			time.Duration(lat.Quantile(0.999)), time.Duration(int64(lat.Mean())), lat.Count)
	}

	if *statsOut != "" {
		if err := dumpStats(*addr, ns, *statsOut); err != nil {
			log.Printf("skipload: stats-out: %v", err)
			ctr.errs.Add(1)
		}
	}
	if ctr.errs.Load() > 0 {
		os.Exit(1)
	}
}

// runConn drives one connection until stop closes, returning its
// latency histogram (per-request, flush to response).
func runConn(c *wire.Client, rng *rand.Rand, ns []byte, gen *workload.MovingZipf,
	mix workload.Mix, sizer workload.ValSizer, window, snapEvery int,
	ctr *counters, stop <-chan struct{}) *stats.Hist {
	local := &stats.Hist{}
	val := make([]byte, sizer.Max)
	var resp wire.Response
	for w := 0; ; w++ {
		select {
		case <-stop:
			return local
		default:
		}
		sent := 0
		for j := 0; j < window; j++ {
			key := gen.Next(rng)
			var req wire.Request
			if snapEvery > 0 && j == 0 && w%snapEvery == snapEvery-1 {
				req = wire.Request{Op: wire.OpSnapScan, NS: ns, Key: key, Limit: 64}
			} else {
				switch mix.Pick(rng) {
				case workload.OpInsert:
					v := val[:sizer.Next(rng)]
					sizer.Fill(v, key)
					req = wire.Request{Op: wire.OpSet, NS: ns, Key: key, Val: v}
				case workload.OpDelete:
					req = wire.Request{Op: wire.OpDel, NS: ns, Key: key}
				case workload.OpContains:
					req = wire.Request{Op: wire.OpGet, NS: ns, Key: key}
				default:
					req = wire.Request{Op: wire.OpScan, NS: ns, Key: key, Limit: 16}
				}
			}
			req.Seq = c.NextSeq()
			if err := c.Send(&req); err != nil {
				ctr.errs.Add(1)
				return local
			}
			sent++
		}
		if err := c.Flush(); err != nil {
			ctr.errs.Add(1)
			return local
		}
		t0 := time.Now()
		for j := 0; j < sent; j++ {
			if err := c.Recv(&resp); err != nil {
				ctr.errs.Add(1)
				return local
			}
			local.Record(int64(time.Since(t0)))
			switch resp.Status {
			case wire.StatusOK, wire.StatusNotFound:
				ctr.ops.Add(1)
			case wire.StatusBusy:
				ctr.busy.Add(1)
			case wire.StatusShutdown:
				ctr.shutdown.Add(1)
			default:
				ctr.errs.Add(1)
			}
		}
	}
}

// dumpStats fetches the namespace's STATS exposition on a fresh
// connection and writes it to path.
func dumpStats(addr string, ns []byte, path string) error {
	c, err := wire.Dial(addr, 10*time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	text, err := c.Stats(ns)
	if err != nil {
		return err
	}
	return os.WriteFile(path, text, 0o644)
}
