package skiptrie

import (
	"math/rand"
	"sync"
	"testing"

	"skiptrie/internal/linearize"
	"skiptrie/internal/testenv"
)

// TestSnapshotTortureStrictCompleteness is the concurrent acceptance
// test for the snapshot subsystem: writers churn shard-boundary keys
// with per-iteration values, a resharder forces Split/Merge
// continuously, and snapshot goroutines pin views mid-flight and drain
// them (keys and values, ascending and descending). Every drain is
// checked with linearize.CheckSnapshotScan against the full recorded
// history — the STRICT rules, all applied to the pin window rather
// than the drain window: every key live at the pin point must appear,
// nothing born after the pin may appear, and every value must be
// schedulable as current at the pin. The deliberate delays between pin
// and drain mean any implementation that reads live state instead of
// the pinned epoch fails the post-pin rules almost immediately.
//
// Run under -race in CI in both DCSS and CAS-fallback modes; the
// nightly soak lane scales the iteration counts via SKIPTRIE_TEST_SOAK.
func TestSnapshotTortureStrictCompleteness(t *testing.T) {
	const (
		w       = 16
		shards  = 4
		writers = 3
		pinners = 2
	)
	iters := testenv.Scale(400)
	snaps := testenv.Scale(20)
	s := MustNewSharded[uint64](tortureShardedOpts(WithWidth(w), WithShards(shards), WithMaxShards(64), WithSeed(31))...)
	defer s.Close()

	// Churn keys at the boundaries every reachable partition can have,
	// plus stable anchors the strict completeness rule always owes.
	step := uint64(1) << (w - 6)
	var hot []uint64
	for k := uint64(1); k < 64; k++ {
		hot = append(hot, k*step-1, k*step)
	}
	anchors := []uint64{11, 1<<15 + 5, 1<<16 - 9}
	var rec linearize.Recorder
	for _, a := range anchors {
		inv := rec.Invoke()
		s.Store(a, a)
		rec.RecordValue(linearize.Store, a, true, a, 0, inv)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				k := hot[rng.Intn(len(hot))]
				v := k | uint64(seed)<<48 | uint64(i)<<24
				switch rng.Intn(3) {
				case 0:
					inv := rec.Invoke()
					s.Store(k, v)
					rec.RecordValue(linearize.Store, k, true, v, 0, inv)
				case 1:
					inv := rec.Invoke()
					ok := s.Delete(k)
					rec.Record(linearize.Delete, k, ok, 0, inv)
				default:
					inv := rec.Invoke()
					got, loaded := s.LoadOrStore(k, v)
					rec.RecordValue(linearize.LoadOrStore, k, loaded, v, got, inv)
				}
			}
		}(int64(g + 1))
	}

	// Forced resharding: every snapshot overlaps drains, seals and
	// table swaps. It runs until the writers and pinners are done, so
	// it waits on its own group.
	var reWg sync.WaitGroup
	reWg.Add(1)
	go func() {
		defer reWg.Done()
		rng := rand.New(rand.NewSource(77))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := uint64(rng.Intn(1 << w))
			if rng.Intn(2) == 0 {
				_ = s.Split(k)
			} else {
				_ = s.Merge(k)
			}
		}
	}()

	type drained struct {
		scan           linearize.Scan
		pinInv, pinRet int64
	}
	scanCh := make(chan drained, pinners*snaps*2)
	for g := 0; g < pinners; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(1000 + seed))
			for i := 0; i < snaps; i++ {
				pinInv := rec.Invoke()
				sn := s.Snapshot()
				pinRet := rec.Invoke()

				// Let the world churn between pin and drain: the wider
				// the gap, the more a live-read bug diverges.
				for j := 0; j < rng.Intn(64); j++ {
					_, _ = s.Load(hot[rng.Intn(len(hot))])
				}

				asc := linearize.Scan{Vals: []uint64{}}
				desc := linearize.Scan{Vals: []uint64{}, From: 1<<w - 1, Desc: true}
				it := sn.Iter()
				for ok := it.First(); ok; ok = it.Next() {
					asc.Keys = append(asc.Keys, it.Key())
					asc.Vals = append(asc.Vals, it.Value())
				}
				for ok := it.Last(); ok; ok = it.Prev() {
					desc.Keys = append(desc.Keys, it.Key())
					desc.Vals = append(desc.Vals, it.Value())
				}
				sn.Close()
				scanCh <- drained{asc, pinInv, pinRet}
				scanCh <- drained{desc, pinInv, pinRet}
			}
		}(int64(g))
	}
	wg.Wait()
	close(stop)
	reWg.Wait()
	close(scanCh)

	history := rec.History()
	n := 0
	for d := range scanCh {
		if err := linearize.CheckSnapshotScan(d.scan, d.pinInv, d.pinRet, history); err != nil {
			t.Fatalf("snapshot drain %d: %v", n, err)
		}
		n++
	}
	if n != pinners*snaps*2 {
		t.Fatalf("checked %d drains, want %d", n, pinners*snaps*2)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate after torture: %v", err)
	}
}

// TestSnapshotTortureMap runs the same strict check against the Map
// backend (one trie, no resharding): concurrent writers churn while
// pinners drain snapshots, isolating the epoch machinery from the
// shard composition above it.
func TestSnapshotTortureMap(t *testing.T) {
	const (
		w       = 14
		writers = 3
		pinners = 2
	)
	iters := testenv.Scale(400)
	snaps := testenv.Scale(20)
	m := MustNewMap[uint64](tortureMapOpts(WithWidth(w), WithSeed(17))...)
	keys := []uint64{3, 5, 1 << 7, 1<<7 + 1, 1 << 13, 1<<14 - 2}
	var rec linearize.Recorder
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				k := keys[rng.Intn(len(keys))]
				v := k | uint64(seed)<<48 | uint64(i)<<24
				if rng.Intn(2) == 0 {
					inv := rec.Invoke()
					m.Store(k, v)
					rec.RecordValue(linearize.Store, k, true, v, 0, inv)
				} else {
					inv := rec.Invoke()
					ok := m.Delete(k)
					rec.Record(linearize.Delete, k, ok, 0, inv)
				}
			}
		}(int64(g + 1))
	}
	type drained struct {
		scan           linearize.Scan
		pinInv, pinRet int64
	}
	scanCh := make(chan drained, pinners*snaps)
	for g := 0; g < pinners; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < snaps; i++ {
				pinInv := rec.Invoke()
				sn := m.Snapshot()
				pinRet := rec.Invoke()
				scan := linearize.Scan{Vals: []uint64{}}
				sn.Range(0, func(k, v uint64) bool {
					scan.Keys = append(scan.Keys, k)
					scan.Vals = append(scan.Vals, v)
					return true
				})
				sn.Close()
				scanCh <- drained{scan, pinInv, pinRet}
			}
		}()
	}
	wg.Wait()
	close(scanCh)
	history := rec.History()
	for d := range scanCh {
		if err := linearize.CheckSnapshotScan(d.scan, d.pinInv, d.pinRet, history); err != nil {
			t.Fatalf("map snapshot drain: %v", err)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}
