package skiptrie

import "testing"

// Allocation regression tests for the write path. The budgets below pin
// the measured per-op object counts after the pooling work (tower slab +
// discarded-node pool); regressions that add objects per op fail here
// before they show up in benchmarks.

// allocsPerRun is testing.AllocsPerRun with the warm-up the pool needs:
// the first runs populate the sync.Pool and stripe seeds, so we measure
// the steady state.
func allocsPerRun(runs int, f func()) float64 {
	for i := 0; i < 8; i++ {
		f()
	}
	return testing.AllocsPerRun(runs, f)
}

func TestAllocsFreshInsert(t *testing.T) {
	m := MustNewMap[int](WithWidth(32), WithSeed(1))
	var k uint64
	got := allocsPerRun(2000, func() {
		m.Store(k, int(k))
		k += 3
	})
	// Seed measured 13.0 objects per fresh insert; the tower slab (one
	// backing array per multi-level tower instead of h-1 node allocs)
	// and the discard pool brought it to 12.0. Budget 12.5 allows noise
	// while still catching any full-object regression.
	if got > 12.5 {
		t.Fatalf("fresh insert allocates %.1f objects/op, budget 12.5 (seed was 13.0)", got)
	}
}

func TestAllocsStoreExisting(t *testing.T) {
	m := MustNewMap[int](WithWidth(32), WithSeed(1))
	for i := uint64(0); i < 1024; i++ {
		m.Store(i, int(i))
	}
	var k uint64
	if got := allocsPerRun(2000, func() {
		m.Store(k&1023, 7)
		k++
	}); got != 0 {
		t.Fatalf("Store of existing key allocates %.1f objects/op, want 0", got)
	}
}

func TestAllocsLoad(t *testing.T) {
	m := MustNewMap[int](WithWidth(32), WithSeed(1))
	for i := uint64(0); i < 1024; i++ {
		m.Store(i, int(i))
	}
	var k uint64
	if got := allocsPerRun(2000, func() {
		m.Load(k & 1023)
		k++
	}); got != 0 {
		t.Fatalf("Load allocates %.1f objects/op, want 0", got)
	}
}

func TestAllocsMeteredLoad(t *testing.T) {
	var met Metrics
	m := MustNewMap[int](WithWidth(32), WithSeed(1), WithMetrics(&met))
	for i := uint64(0); i < 1024; i++ {
		m.Store(i, int(i))
	}
	var k uint64
	// The per-op stats.Op counter must stay stack-allocated even with a
	// collector attached: record only reads it, so it must not escape.
	if got := allocsPerRun(2000, func() {
		m.Load(k & 1023)
		k++
	}); got != 0 {
		t.Fatalf("metered Load allocates %.1f objects/op, want 0", got)
	}
}

func TestAllocsStoreBatchPerKey(t *testing.T) {
	m := MustNewMap[int](WithWidth(32), WithSeed(1))
	const batch = 256
	keys := make([]uint64, batch)
	vals := make([]int, batch)
	var base uint64
	got := allocsPerRun(50, func() {
		for i := range keys {
			keys[i] = base + uint64(i)*3
			vals[i] = i
		}
		base += batch * 3
		m.StoreBatch(keys, vals)
	})
	// Sorted input takes the zero-copy fast path, so the whole batch's
	// allocations are the fresh inserts themselves. Budget matches the
	// fresh-insert budget per key plus slack for one-off pool misses.
	perKey := got / batch
	if perKey > 13.0 {
		t.Fatalf("StoreBatch allocates %.2f objects per key, budget 13.0", perKey)
	}
}

func TestAllocsStoreBatchExisting(t *testing.T) {
	m := MustNewMap[int](WithWidth(32), WithSeed(1))
	const batch = 256
	keys := make([]uint64, batch)
	vals := make([]int, batch)
	for i := range keys {
		keys[i] = uint64(i) * 3
		vals[i] = i
	}
	m.StoreBatch(keys, vals)
	// Re-storing the same sorted run must not allocate at all: no new
	// nodes, no sort copy, no per-key boxing.
	if got := allocsPerRun(200, func() { m.StoreBatch(keys, vals) }); got != 0 {
		t.Fatalf("StoreBatch over existing keys allocates %.1f objects/batch, want 0", got)
	}
}
