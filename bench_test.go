// Benchmarks regenerating the reproduction experiments of DESIGN.md
// (T1-T8, F1), one benchmark function per experiment id, plus standard
// micro-benchmarks of the public API. cmd/skipbench runs the same
// experiment code with larger parameters and prints full tables;
// EXPERIMENTS.md records a reference run.
package skiptrie

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"skiptrie/internal/baseline/cskiplist"
	"skiptrie/internal/baseline/lockedset"
	"skiptrie/internal/baseline/yfast"
	"skiptrie/internal/core"
	"skiptrie/internal/harness"
	"skiptrie/internal/skiplist"
	"skiptrie/internal/stats"
	"skiptrie/internal/workload"
)

const benchM = 1 << 14

// --- T1: predecessor steps vs universe width ---

func BenchmarkT1PredecessorVsUniverse(b *testing.B) {
	for _, w := range []uint8{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("skiptrie/W=%d", w), func(b *testing.B) {
			s := harness.SkipTrieSet{T: core.NewSet(core.Config{Width: w, Seed: 11})}
			harness.Prefill(s, benchM, w)
			gen := workload.Uniform{W: w}
			rng := rand.New(rand.NewSource(1))
			var steps stats.Op
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var c stats.Op
				s.Predecessor(gen.Next(rng), &c)
				steps.Add(c)
			}
			b.ReportMetric(float64(steps.Steps())/float64(b.N), "steps/op")
		})
	}
	// The comparator: one width suffices, its cost depends only on m.
	b.Run("skiplist/anyW", func(b *testing.B) {
		s := harness.CSkipListSet{L: cskiplist.New(11)}
		harness.Prefill(s, benchM, 64)
		gen := workload.Uniform{W: 64}
		rng := rand.New(rand.NewSource(1))
		var steps stats.Op
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var c stats.Op
			s.Predecessor(gen.Next(rng), &c)
			steps.Add(c)
		}
		b.ReportMetric(float64(steps.Steps())/float64(b.N), "steps/op")
	})
}

// --- T2: predecessor vs number of keys ---

func BenchmarkT2PredecessorVsM(b *testing.B) {
	const w = 32
	for _, logM := range []int{10, 14, 18} {
		m := 1 << logM
		b.Run(fmt.Sprintf("skiptrie/m=2^%d", logM), func(b *testing.B) {
			s := harness.SkipTrieSet{T: core.NewSet(core.Config{Width: w, Seed: 7})}
			harness.Prefill(s, m, w)
			gen := workload.Uniform{W: w}
			rng := rand.New(rand.NewSource(2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Predecessor(gen.Next(rng), nil)
			}
		})
		b.Run(fmt.Sprintf("skiplist/m=2^%d", logM), func(b *testing.B) {
			s := harness.CSkipListSet{L: cskiplist.New(7)}
			harness.Prefill(s, m, w)
			gen := workload.Uniform{W: w}
			rng := rand.New(rand.NewSource(2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Predecessor(gen.Next(rng), nil)
			}
		})
	}
}

// --- T3: amortized update cost ---

func BenchmarkT3AmortizedUpdates(b *testing.B) {
	for _, w := range []uint8{16, 32, 64} {
		b.Run(fmt.Sprintf("insert+delete/W=%d", w), func(b *testing.B) {
			s := harness.SkipTrieSet{T: core.NewSet(core.Config{Width: w, Seed: 5})}
			harness.Prefill(s, benchM, w)
			gen := workload.Uniform{W: w}
			rng := rand.New(rand.NewSource(3))
			var steps stats.Op
			touches := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := gen.Next(rng)
				var c stats.Op
				if i%2 == 0 {
					s.Insert(k, &c)
				} else {
					s.Delete(k, &c)
				}
				if c.TrieTouch {
					touches++
				}
				steps.Add(c)
			}
			b.ReportMetric(float64(steps.Steps())/float64(b.N), "steps/op")
			b.ReportMetric(float64(touches)/float64(b.N), "trie-touch-rate")
		})
	}
}

// --- T4: throughput scaling ---

func BenchmarkT4Throughput(b *testing.B) {
	const w = 32
	builds := []struct {
		name  string
		build func() harness.Set
	}{
		{"skiptrie", func() harness.Set { return harness.SkipTrieSet{T: core.NewSet(core.Config{Width: w, Seed: 3})} }},
		{"skiplist", func() harness.Set { return harness.CSkipListSet{L: cskiplist.New(3)} }},
		{"yfast+lock", func() harness.Set { return harness.LockedYFastSet{Y: yfast.NewLocked(w)} }},
		{"treap+lock", func() harness.Set { return harness.LockedTreapSet{S: lockedset.New(3)} }},
	}
	for _, tc := range builds {
		b.Run(tc.name, func(b *testing.B) {
			s := tc.build()
			harness.Prefill(s, benchM, w)
			mix := workload.Mix{InsertPct: 5, DeletePct: 5}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(rand.Int63()))
				gen := workload.Uniform{W: w}
				for pb.Next() {
					k := gen.Next(rng)
					switch mix.Pick(rng) {
					case workload.OpInsert:
						s.Insert(k, nil)
					case workload.OpDelete:
						s.Delete(k, nil)
					default:
						s.Predecessor(k, nil)
					}
				}
			})
		})
	}
}

// --- T5: contention on a hot window ---

func BenchmarkT5Contention(b *testing.B) {
	const w = 32
	s := harness.SkipTrieSet{T: core.NewSet(core.Config{Width: w, Seed: 21})}
	harness.Prefill(s, benchM, w)
	gen := workload.Clustered{W: w, Base: 1 << 20, Span: 1024}
	mix := workload.Mix{InsertPct: 25, DeletePct: 25}
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(rand.Int63()))
		for pb.Next() {
			k := gen.Next(rng)
			switch mix.Pick(rng) {
			case workload.OpInsert:
				s.Insert(k, nil)
			case workload.OpDelete:
				s.Delete(k, nil)
			default:
				s.Predecessor(k, nil)
			}
		}
	})
}

// --- T6: space per key ---

func BenchmarkT6Space(b *testing.B) {
	for _, w := range []uint8{16, 32, 64} {
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			// Build once; the timed loop measures the space query itself,
			// the metrics report the structural ratios the claim is about.
			st := core.NewSet(core.Config{Width: w, Seed: 17})
			harness.Prefill(harness.SkipTrieSet{T: st}, benchM, w)
			b.ResetTimer()
			var sp core.SpaceStats
			for i := 0; i < b.N; i++ {
				sp = st.Space()
			}
			b.ReportMetric(float64(sp.TowerNodes)/float64(sp.Keys), "towernodes/key")
			b.ReportMetric(float64(sp.TriePrefix)/float64(sp.Keys), "prefixes/key")
		})
	}
}

// --- F1: top-level gap distribution ---

func BenchmarkF1TopLevelGaps(b *testing.B) {
	for _, w := range []uint8{16, 32, 64} {
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			// Build once; the timed loop measures the gap sweep, the
			// metrics report the distribution the claim is about.
			st := core.NewSet(core.Config{Width: w, Seed: 29})
			harness.Prefill(harness.SkipTrieSet{T: st}, benchM, w)
			b.ResetTimer()
			var gaps []int
			for i := 0; i < b.N; i++ {
				gaps = st.TopGaps()
			}
			sum := 0
			for _, g := range gaps {
				sum += g
			}
			if len(gaps) > 0 {
				b.ReportMetric(float64(sum)/float64(len(gaps)), "meangap")
			}
			b.ReportMetric(float64(int(w)), "predicted-meangap")
		})
	}
}

// --- T7: DCSS vs CAS fallback ---

func BenchmarkT7DCSSvsCAS(b *testing.B) {
	const w = 32
	for _, disable := range []bool{false, true} {
		name := "dcss"
		if disable {
			name = "cas-fallback"
		}
		b.Run(name, func(b *testing.B) {
			s := harness.SkipTrieSet{T: core.NewSet(core.Config{Width: w, DisableDCSS: disable, Seed: 43})}
			harness.Prefill(s, benchM, w)
			mix := workload.Mix{InsertPct: 25, DeletePct: 25}
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(rand.Int63()))
				gen := workload.Uniform{W: w}
				for pb.Next() {
					k := gen.Next(rng)
					switch mix.Pick(rng) {
					case workload.OpInsert:
						s.Insert(k, nil)
					case workload.OpDelete:
						s.Delete(k, nil)
					default:
						s.Predecessor(k, nil)
					}
				}
			})
		})
	}
}

// --- T8: prev-repair discipline ---

func BenchmarkT8PrevRepair(b *testing.B) {
	const w = 16
	for _, eager := range []bool{false, true} {
		name := "relaxed"
		cfg := core.Config{Width: w, Seed: 61}
		if eager {
			name = "eager"
			cfg.Repair = skiplist.RepairEager
		}
		b.Run(name, func(b *testing.B) {
			s := harness.SkipTrieSet{T: core.NewSet(cfg)}
			harness.Prefill(s, benchM/4, w)
			gen := workload.Clustered{W: w, Base: 1 << 12, Span: 4096}
			mix := workload.Mix{InsertPct: 45, DeletePct: 45}
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(rand.Int63()))
				for pb.Next() {
					k := gen.Next(rng)
					switch mix.Pick(rng) {
					case workload.OpInsert:
						s.Insert(k, nil)
					case workload.OpDelete:
						s.Delete(k, nil)
					default:
						s.Predecessor(k, nil)
					}
				}
			})
		})
	}
}

// --- S1: sharded vs unsharded under controlled goroutine counts ---

// kvStore is the Map/Sharded surface the sharding benchmarks compare.
type kvStore interface {
	Store(key uint64, val uint64)
	Load(key uint64) (uint64, bool)
	Delete(key uint64) bool
}

// shardedBenchBuilds pairs the single-trie Map against Sharded at the
// default (GOMAXPROCS-rounded) and a fixed 8-shard configuration.
func shardedBenchBuilds() []struct {
	name  string
	build func() kvStore
} {
	const w = 32
	return []struct {
		name  string
		build func() kvStore
	}{
		{"map", func() kvStore { return MustNewMap[uint64](WithWidth(w), WithSeed(1)) }},
		{"sharded8", func() kvStore { return MustNewSharded[uint64](WithWidth(w), WithShards(8), WithSeed(1)) }},
	}
}

// runShardedBench splits b.N across g goroutines, each running worker
// with its own rng, and waits for all of them.
func runShardedBench(b *testing.B, g int, worker func(rng *rand.Rand, n int)) {
	per := (b.N + g - 1) / g
	var wg sync.WaitGroup
	b.ResetTimer()
	for id := 0; id < g; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker(rand.New(rand.NewSource(int64(id)*6151+1)), per)
		}(id)
	}
	wg.Wait()
}

var shardedBenchGs = []int{1, 2, 4, 8, 16}

func BenchmarkShardedStore(b *testing.B) {
	for _, tc := range shardedBenchBuilds() {
		for _, g := range shardedBenchGs {
			b.Run(fmt.Sprintf("%s/g=%d", tc.name, g), func(b *testing.B) {
				s := tc.build()
				for _, k := range workload.SpreadKeys(benchM, 32) {
					s.Store(k, k)
				}
				runShardedBench(b, g, func(rng *rand.Rand, n int) {
					for i := 0; i < n; i++ {
						k := uint64(rng.Uint32())
						s.Store(k, k)
					}
				})
			})
		}
	}
}

func BenchmarkShardedLoad(b *testing.B) {
	for _, tc := range shardedBenchBuilds() {
		for _, g := range shardedBenchGs {
			b.Run(fmt.Sprintf("%s/g=%d", tc.name, g), func(b *testing.B) {
				s := tc.build()
				keys := workload.SpreadKeys(benchM, 32)
				for _, k := range keys {
					s.Store(k, k)
				}
				runShardedBench(b, g, func(rng *rand.Rand, n int) {
					for i := 0; i < n; i++ {
						s.Load(keys[rng.Intn(len(keys))])
					}
				})
			})
		}
	}
}

// BenchmarkShardedMixed is the acceptance workload: 50% Load, 25%
// Store, 25% Delete over random keys. On multicore hardware the
// sharded rows should clearly beat the single trie as g grows, since
// writers in different shards share no CAS targets or cache lines.
func BenchmarkShardedMixed(b *testing.B) {
	for _, tc := range shardedBenchBuilds() {
		for _, g := range shardedBenchGs {
			b.Run(fmt.Sprintf("%s/g=%d", tc.name, g), func(b *testing.B) {
				s := tc.build()
				for _, k := range workload.SpreadKeys(benchM, 32) {
					s.Store(k, k)
				}
				runShardedBench(b, g, func(rng *rand.Rand, n int) {
					for i := 0; i < n; i++ {
						k := uint64(rng.Uint32())
						switch rng.Intn(4) {
						case 0:
							s.Store(k, k)
						case 1:
							s.Delete(k)
						default:
							s.Load(k)
						}
					}
				})
			})
		}
	}
}

// --- standard micro-benchmarks of the public API ---

func BenchmarkInsert(b *testing.B) {
	st := MustNew(WithWidth(64))
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Insert(rng.Uint64())
	}
}

func BenchmarkContains(b *testing.B) {
	st := MustNew(WithWidth(64))
	keys := workload.SpreadKeys(benchM, 64)
	for _, k := range keys {
		st.Insert(k)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Contains(keys[rng.Intn(len(keys))])
	}
}

func BenchmarkPredecessor(b *testing.B) {
	st := MustNew(WithWidth(64))
	for _, k := range workload.SpreadKeys(benchM, 64) {
		st.Insert(k)
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Predecessor(rng.Uint64())
	}
}

func BenchmarkDeleteInsertCycle(b *testing.B) {
	st := MustNew(WithWidth(32))
	keys := workload.SpreadKeys(benchM, 32)
	for _, k := range keys {
		st.Insert(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		st.Delete(k)
		st.Insert(k)
	}
}

func BenchmarkMapStoreLoad(b *testing.B) {
	m := MustNewMap[int](WithWidth(32))
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(rng.Uint32())
		m.Store(k, i)
		m.Load(k)
	}
}

// BenchmarkMapStore measures the Store-existing-key (update) path. With
// values stored unboxed in the node, overwriting allocates nothing — the
// allocs/op this reports is the boxing cost the generic value path
// removed (the old any-based path paid an interface conversion plus a
// value cell per Store).
func BenchmarkMapStore(b *testing.B) {
	m := MustNewMap[uint64](WithWidth(32))
	keys := workload.SpreadKeys(benchM, 32)
	for _, k := range keys {
		m.Store(k, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Store(keys[i%len(keys)], uint64(i))
	}
}

// BenchmarkMapLoad measures the read path; like Store-existing it runs
// allocation-free.
func BenchmarkMapLoad(b *testing.B) {
	m := MustNewMap[uint64](WithWidth(32))
	keys := workload.SpreadKeys(benchM, 32)
	for i, k := range keys {
		m.Store(k, uint64(i))
	}
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Load(keys[rng.Intn(len(keys))])
	}
}
