package skiptrie

import (
	"sync"
	"testing"
)

// TestMapZeroValueStructs stores zero-valued struct values — which the old
// boxed path (cast(nil) -> zero) could not distinguish from "absent" — and
// checks presence is reported independently of the value being zero.
func TestMapZeroValueStructs(t *testing.T) {
	type pair struct{ A, B int }
	m := MustNewMap[pair](WithWidth(16))
	m.Store(7, pair{})
	got, ok := m.Load(7)
	if !ok {
		t.Fatal("Load(7) reported absent for a stored zero value")
	}
	if got != (pair{}) {
		t.Fatalf("Load(7) = %+v, want zero pair", got)
	}
	// LoadOrStore must load the existing zero value, not store.
	if v, loaded := m.LoadOrStore(7, pair{A: 1}); !loaded || v != (pair{}) {
		t.Fatalf("LoadOrStore(7) = %+v, %v", v, loaded)
	}
	// Overwrite zero -> nonzero -> zero round-trips.
	m.Store(7, pair{A: 3, B: 4})
	if v, _ := m.Load(7); v != (pair{A: 3, B: 4}) {
		t.Fatalf("Load after overwrite = %+v", v)
	}
	m.Store(7, pair{})
	if v, ok := m.Load(7); !ok || v != (pair{}) {
		t.Fatalf("Load after zeroing = %+v, %v", v, ok)
	}
}

// TestMapNilPointerValues stores nil pointers, which the old any-boxed path
// papered over (a nil any was returned as the zero V whether or not the key
// existed).
func TestMapNilPointerValues(t *testing.T) {
	m := MustNewMap[*int](WithWidth(16))
	m.Store(1, nil)
	v, ok := m.Load(1)
	if !ok {
		t.Fatal("Load(1) reported absent for a stored nil pointer")
	}
	if v != nil {
		t.Fatalf("Load(1) = %v, want nil", v)
	}
	// LoadOrStore on the nil-valued key loads nil rather than storing.
	x := 42
	if got, loaded := m.LoadOrStore(1, &x); !loaded || got != nil {
		t.Fatalf("LoadOrStore(1) = %v, %v; want nil, true", got, loaded)
	}
	// nil -> non-nil -> nil overwrites in place.
	m.Store(1, &x)
	if got, _ := m.Load(1); got != &x {
		t.Fatal("pointer overwrite failed")
	}
	m.Store(1, nil)
	if got, ok := m.Load(1); !ok || got != nil {
		t.Fatalf("Load after nil overwrite = %v, %v", got, ok)
	}
	// Predecessor/Successor surface nil values with ok=true too.
	if k, got, ok := m.Predecessor(5); !ok || k != 1 || got != nil {
		t.Fatalf("Predecessor(5) = %d, %v, %v", k, got, ok)
	}
}

// TestMapStoreUpdateNoAllocs locks in the tentpole's allocation win: with
// unboxed values, overwriting an existing key allocates nothing, and
// neither does Load.
func TestMapStoreUpdateNoAllocs(t *testing.T) {
	m := MustNewMap[uint64](WithWidth(32))
	keys := make([]uint64, 256)
	for i := range keys {
		keys[i] = uint64(i) * 16_411
		m.Store(keys[i], 0)
	}
	i := 0
	if avg := testing.AllocsPerRun(2000, func() {
		k := keys[i%len(keys)]
		m.Store(k, uint64(i))
		i++
	}); avg != 0 {
		t.Fatalf("Store on existing key allocates %.2f objects/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(2000, func() {
		k := keys[i%len(keys)]
		if _, ok := m.Load(k); !ok {
			t.Fatal("key vanished")
		}
		i++
	}); avg != 0 {
		t.Fatalf("Load allocates %.2f objects/op, want 0", avg)
	}
}

// TestKeysSingleAlloc locks in Keys()'s preallocation: with the result
// slice sized from Len() up front, a full snapshot costs exactly one
// allocation (the slice itself) no matter how many keys it copies —
// growing from nil would cost O(log n) progressively larger ones.
func TestKeysSingleAlloc(t *testing.T) {
	st := MustNew(WithWidth(32))
	for i := uint64(0); i < 4096; i++ {
		st.Insert(i * 1_048_583)
	}
	n := st.Len()
	if avg := testing.AllocsPerRun(20, func() {
		if got := st.Keys(); len(got) != n {
			t.Fatalf("Keys returned %d keys, want %d", len(got), n)
		}
	}); avg > 1 {
		t.Fatalf("Keys allocates %.2f objects/run, want 1", avg)
	}
	// The sharded snapshot keeps the same shape guarantee — the keys
	// slice is the only thing sized by key count — plus exactly three
	// fixed allocations for the k-way merge cursor: its per-shard
	// cursor slice, its loser tree, and the cursor struct itself (which
	// escapes because the eager seeding path can hand it to seeding
	// goroutines). All O(1) per snapshot regardless of how many keys it
	// copies.
	sh := MustNewSharded[struct{}](WithWidth(32), WithShards(4))
	for i := uint64(0); i < 1024; i++ {
		sh.Store(i*4_194_301, struct{}{})
	}
	n = sh.Len()
	if avg := testing.AllocsPerRun(20, func() {
		if got := sh.Keys(); len(got) != n {
			t.Fatalf("Sharded.Keys returned %d keys, want %d", len(got), n)
		}
	}); avg > 4 {
		t.Fatalf("Sharded.Keys allocates %.2f objects/run, want <= 4 (keys slice + 3 fixed merge-cursor allocations)", avg)
	}
}

// TestMapConcurrentStoreDeleteLoadOrStore races Store, Delete, LoadOrStore
// and Load over a small hot key set with multi-word values. Run under
// -race this checks the value slot's synchronization; the assertion checks
// that no torn value is ever observed (all four words must agree).
func TestMapConcurrentStoreDeleteLoadOrStore(t *testing.T) {
	type wide [4]uint64
	mk := func(x uint64) wide { return wide{x, x ^ 0xABCD, x * 3, x + 7} }
	valid := func(w wide) bool { return w == mk(w[0]) }

	m := MustNewMap[wide](tortureMapOpts(WithWidth(16))...)
	const (
		workers = 8
		keys    = 16
		rounds  = 4000
	)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g uint64) {
			defer wg.Done()
			for i := uint64(0); i < rounds; i++ {
				k := (g*31 + i) % keys
				x := g<<32 | i
				switch i % 4 {
				case 0:
					m.Store(k, mk(x))
				case 1:
					if v, _ := m.LoadOrStore(k, mk(x)); !valid(v) {
						t.Errorf("LoadOrStore(%d) observed torn value %v", k, v)
						return
					}
				case 2:
					m.Delete(k)
				default:
					if v, ok := m.Load(k); ok && !valid(v) {
						t.Errorf("Load(%d) observed torn value %v", k, v)
						return
					}
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
