package skiptrie

import (
	"skiptrie/internal/core"
	"skiptrie/internal/stats"
)

// Map is a concurrent lock-free ordered map from uint64 keys to values of
// type V, built on the same SkipTrie structure as the set API and adding
// predecessor/successor queries over keys. Create one with NewMap; the
// zero value is not usable.
type Map[V any] struct {
	c *core.SkipTrie
	m *Metrics
}

// NewMap returns an empty ordered map. It accepts the same options as New.
func NewMap[V any](opts ...Option) *Map[V] {
	o := buildOptions(opts)
	return &Map[V]{
		c: core.New(core.Config{
			Width:       o.width,
			DisableDCSS: o.disableDCSS,
			Repair:      o.repair,
			Seed:        o.seed,
		}),
		m: o.metrics,
	}
}

func (m *Map[V]) op() *stats.Op {
	if m.m == nil {
		return nil
	}
	return new(stats.Op)
}

func (m *Map[V]) cast(v any) V {
	if v == nil {
		var zero V
		return zero
	}
	return v.(V)
}

// Store sets the value for key, inserting it if absent.
func (m *Map[V]) Store(key uint64, val V) {
	c := m.op()
	defer m.m.record(OpInsert, key, c)
	for {
		if m.c.Insert(key, val, c) {
			return
		}
		if n, ok := m.c.FindNode(key, c); ok {
			n.SetValue(val)
			return
		}
		// The key vanished between the failed insert and the lookup
		// (concurrent delete); retry the insert.
	}
}

// Load returns the value stored under key.
func (m *Map[V]) Load(key uint64) (V, bool) {
	c := m.op()
	v, ok := m.c.Find(key, c)
	m.m.record(OpContains, key, c)
	return m.cast(v), ok
}

// LoadOrStore returns the existing value for key if present; otherwise it
// stores val. The loaded result reports whether the value was loaded.
func (m *Map[V]) LoadOrStore(key uint64, val V) (actual V, loaded bool) {
	c := m.op()
	defer m.m.record(OpInsert, key, c)
	for {
		if m.c.Insert(key, val, c) {
			return val, false
		}
		if v, ok := m.c.Find(key, c); ok {
			return m.cast(v), true
		}
	}
}

// Delete removes key and reports whether this call removed it.
func (m *Map[V]) Delete(key uint64) bool {
	c := m.op()
	ok := m.c.Delete(key, c)
	m.m.record(OpDelete, key, c)
	return ok
}

// Predecessor returns the largest key <= x and its value.
func (m *Map[V]) Predecessor(x uint64) (uint64, V, bool) {
	c := m.op()
	k, v, ok := m.c.Predecessor(x, c)
	m.m.record(OpPredecessor, x, c)
	return k, m.cast(v), ok
}

// Successor returns the smallest key >= x and its value.
func (m *Map[V]) Successor(x uint64) (uint64, V, bool) {
	c := m.op()
	k, v, ok := m.c.Successor(x, c)
	m.m.record(OpPredecessor, x, c)
	return k, m.cast(v), ok
}

// StrictPredecessor returns the largest key < x and its value.
func (m *Map[V]) StrictPredecessor(x uint64) (uint64, V, bool) {
	k, v, ok := m.c.StrictPredecessor(x, m.op())
	return k, m.cast(v), ok
}

// StrictSuccessor returns the smallest key > x and its value.
func (m *Map[V]) StrictSuccessor(x uint64) (uint64, V, bool) {
	k, v, ok := m.c.StrictSuccessor(x, m.op())
	return k, m.cast(v), ok
}

// Min returns the smallest key and its value.
func (m *Map[V]) Min() (uint64, V, bool) {
	k, v, ok := m.c.Min(nil)
	return k, m.cast(v), ok
}

// Max returns the largest key and its value.
func (m *Map[V]) Max() (uint64, V, bool) {
	k, v, ok := m.c.Max(nil)
	return k, m.cast(v), ok
}

// Len returns the number of keys (approximate under concurrent mutation).
func (m *Map[V]) Len() int { return m.c.Len() }

// Range calls fn on each key/value with key >= from in ascending order
// until fn returns false. Iteration is weakly consistent.
func (m *Map[V]) Range(from uint64, fn func(key uint64, val V) bool) {
	m.c.Range(from, func(k uint64, v any) bool { return fn(k, m.cast(v)) }, nil)
}

// Descend calls fn on each key/value with key <= from in descending order
// until fn returns false. Each step costs one strict-predecessor query.
func (m *Map[V]) Descend(from uint64, fn func(key uint64, val V) bool) {
	m.c.Descend(from, func(k uint64, v any) bool { return fn(k, m.cast(v)) }, nil)
}

// Validate checks the quiescent structure's invariants (see
// SkipTrie.Validate).
func (m *Map[V]) Validate() error { return m.c.Validate() }
