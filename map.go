package skiptrie

import (
	"skiptrie/internal/core"
	"skiptrie/internal/stats"
)

// Map is a concurrent ordered map from uint64 keys to values of type V,
// built on the same SkipTrie structure as the set API and adding
// predecessor/successor queries over keys. Values are stored unboxed
// inline in the structure's level-0 nodes: no interface conversion or
// other per-operation allocation happens on the Store-existing-key or
// Load paths. Create one with NewMap; the zero value is not usable.
//
// All structural operations (key membership, ordering, iteration) are
// lock-free, exactly as in the set API. Reading or overwriting the value
// attached to one key is the exception: value access serializes through a
// word-sized per-node spinlock, so a stalled overwriter can briefly block
// readers of that same key's value (and hot-key value reads serialize).
// This is the price of keeping values unboxed; use the set API if you
// need the pure lock-free guarantee.
type Map[V any] struct {
	c *core.SkipTrie[V]
	m *Metrics
	h *TraceHooks
}

// NewMap returns an empty ordered map. It accepts any MapOption (the
// shared Option set); sharding options are NewSharded-only and do not
// compile here. It fails with an error wrapping ErrInvalidOption when
// an option carries an invalid value.
func NewMap[V any](opts ...MapOption) (*Map[V], error) {
	o, err := buildMapOptions(opts)
	if err != nil {
		return nil, err
	}
	c := core.New[V](core.Config{
		Width:       o.width,
		DisableDCSS: o.disableDCSS,
		Repair:      o.repair,
		Seed:        o.seed,
		Trace:       o.hooks.internalTrace(),
	})
	attachGauges(o.metrics, c, func(c *core.SkipTrie[V]) gaugeSample {
		live, retained, segs, oldest := c.PinStats()
		return gaugeSample{livePins: live, oldestPinAge: oldest,
			retainedNodes: retained, journalSegments: segs}
	})
	return &Map[V]{c: c, m: o.metrics, h: o.hooks}, nil
}

// MustNewMap is NewMap, panicking on error — for static configurations
// known valid at compile time.
func MustNewMap[V any](opts ...MapOption) *Map[V] {
	m, err := NewMap[V](opts...)
	if err != nil {
		panic(err)
	}
	return m
}

func (m *Map[V]) op() *stats.Op {
	if m.m == nil {
		return nil
	}
	return new(stats.Op)
}

// Store sets the value for key, inserting it if absent. Overwriting an
// existing key's value happens in place, without allocation. Keys outside
// the universe [0, 2^W) are rejected: nothing is stored.
func (m *Map[V]) Store(key uint64, val V) {
	t := m.m.latStart()
	c := m.op()
	m.c.Store(key, val, c)
	m.m.record(OpInsert, c)
	m.m.recordLatency(OpInsert, t)
}

// Load returns the value stored under key.
func (m *Map[V]) Load(key uint64) (V, bool) {
	t := m.m.latStart()
	c := m.op()
	v, ok := m.c.Find(key, c)
	m.m.record(OpContains, c)
	m.m.recordLatency(OpContains, t)
	return v, ok
}

// LoadOrStore returns the existing value for key if present; otherwise it
// stores val. The loaded result reports whether the value was loaded. Keys
// outside the universe [0, 2^W) are rejected: nothing is stored and the
// result is (val, false) even though no later Load will find it.
func (m *Map[V]) LoadOrStore(key uint64, val V) (actual V, loaded bool) {
	t := m.m.latStart()
	c := m.op()
	actual, loaded = m.c.LoadOrStore(key, val, c)
	m.m.record(OpInsert, c)
	m.m.recordLatency(OpInsert, t)
	return actual, loaded
}

// Delete removes key and reports whether this call removed it.
func (m *Map[V]) Delete(key uint64) bool {
	t := m.m.latStart()
	c := m.op()
	ok := m.c.Delete(key, c)
	m.m.record(OpDelete, c)
	m.m.recordLatency(OpDelete, t)
	return ok
}

// Predecessor returns the largest key <= x and its value.
func (m *Map[V]) Predecessor(x uint64) (uint64, V, bool) {
	t := m.m.latStart()
	c := m.op()
	k, v, ok := m.c.Predecessor(x, c)
	m.m.record(OpPredecessor, c)
	m.m.recordLatency(OpPredecessor, t)
	return k, v, ok
}

// Successor returns the smallest key >= x and its value.
func (m *Map[V]) Successor(x uint64) (uint64, V, bool) {
	t := m.m.latStart()
	c := m.op()
	k, v, ok := m.c.Successor(x, c)
	m.m.record(OpSuccessor, c)
	m.m.recordLatency(OpSuccessor, t)
	return k, v, ok
}

// StrictPredecessor returns the largest key < x and its value.
func (m *Map[V]) StrictPredecessor(x uint64) (uint64, V, bool) {
	t := m.m.latStart()
	c := m.op()
	k, v, ok := m.c.StrictPredecessor(x, c)
	m.m.record(OpPredecessor, c)
	m.m.recordLatency(OpPredecessor, t)
	return k, v, ok
}

// StrictSuccessor returns the smallest key > x and its value.
func (m *Map[V]) StrictSuccessor(x uint64) (uint64, V, bool) {
	t := m.m.latStart()
	c := m.op()
	k, v, ok := m.c.StrictSuccessor(x, c)
	m.m.record(OpSuccessor, c)
	m.m.recordLatency(OpSuccessor, t)
	return k, v, ok
}

// Min returns the smallest key and its value.
func (m *Map[V]) Min() (uint64, V, bool) {
	return m.c.Min(nil)
}

// Max returns the largest key and its value.
func (m *Map[V]) Max() (uint64, V, bool) {
	return m.c.Max(nil)
}

// Len returns the number of keys (approximate under concurrent mutation).
func (m *Map[V]) Len() int { return m.c.Len() }

// Range calls fn on each key/value with key >= from in ascending order
// until fn returns false. Iteration is weakly consistent.
func (m *Map[V]) Range(from uint64, fn func(key uint64, val V) bool) {
	m.c.Range(from, fn, nil)
}

// Descend calls fn on each key/value with key <= from in descending order
// until fn returns false. Each step costs one strict-predecessor query.
func (m *Map[V]) Descend(from uint64, fn func(key uint64, val V) bool) {
	m.c.Descend(from, fn, nil)
}

// Validate checks the quiescent structure's invariants (see
// SkipTrie.Validate).
func (m *Map[V]) Validate() error { return m.c.Validate() }
